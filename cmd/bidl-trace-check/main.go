// Command bidl-trace-check validates trace exports.
//
// Default mode checks a Chrome trace-event JSON file produced by
// bidl-sim -trace: the file must parse, declare microsecond-friendly
// metadata, and contain at least one complete ("X") transaction span and one
// counter ("C") track. Used by `make trace-smoke` to keep the exporter
// loadable in Perfetto / chrome://tracing.
//
// With -jsonl, the argument is instead a raw -trace-jsonl export: every line
// must match the frozen schema (DESIGN.md §12), and each transaction's stage
// timestamps must be non-negative and monotonically non-decreasing — the
// guarantees bidl-report relies on.
//
// Usage:
//
//	bidl-trace-check trace.json
//	bidl-trace-check -jsonl trace.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/bidl-framework/bidl"
)

type traceFile struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []event `json:"traceEvents"`
}

type event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

func main() {
	jsonl := flag.Bool("jsonl", false, "validate a raw -trace-jsonl export instead of a Chrome trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bidl-trace-check [-jsonl] <trace-file>")
		os.Exit(2)
	}
	if *jsonl {
		checkJSONL(flag.Arg(0))
		return
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err.Error())
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("invalid JSON: " + err.Error())
	}
	if tf.DisplayTimeUnit != "ms" {
		fail(fmt.Sprintf("displayTimeUnit = %q, want \"ms\"", tf.DisplayTimeUnit))
	}
	var spans, counters, meta, instants int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur < 0 || e.TS < 0 {
				fail(fmt.Sprintf("span %q has negative ts/dur", e.Name))
			}
			spans++
		case "C":
			counters++
		case "M":
			meta++
		case "i":
			instants++
		default:
			fail(fmt.Sprintf("unexpected event phase %q", e.Ph))
		}
	}
	if spans == 0 {
		fail("no complete (\"X\") spans — no transaction made it through the pipeline")
	}
	if counters == 0 {
		fail("no counter (\"C\") tracks — node telemetry missing")
	}
	fmt.Printf("ok: %d events (%d spans, %d counters, %d metadata, %d instants)\n",
		len(tf.TraceEvents), spans, counters, meta, instants)
}

// checkJSONL validates a raw trace export against the frozen JSONL schema.
func checkJSONL(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	data, err := bidl.ValidateTraceJSONL(f)
	if err != nil {
		fail(err.Error())
	}
	if len(data.TxEvents) == 0 {
		fail("no tx events — no transaction made it through the pipeline")
	}
	fmt.Printf("ok: %d tx events, %d phase events, %d node lines, %d link lines\n",
		len(data.TxEvents), len(data.PhaseEvents), data.NodeLines, data.LinkLines)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "bidl-trace-check:", msg)
	os.Exit(1)
}
