// Command bidl-trace-check validates a Chrome trace-event JSON file produced
// by bidl-sim -trace: the file must parse, declare microsecond-friendly
// metadata, and contain at least one complete ("X") transaction span and one
// counter ("C") track. Used by `make trace-smoke` to keep the exporter
// loadable in Perfetto / chrome://tracing.
//
// Usage: bidl-trace-check trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceFile struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []event `json:"traceEvents"`
}

type event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: bidl-trace-check <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail(err.Error())
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("invalid JSON: " + err.Error())
	}
	if tf.DisplayTimeUnit != "ms" {
		fail(fmt.Sprintf("displayTimeUnit = %q, want \"ms\"", tf.DisplayTimeUnit))
	}
	var spans, counters, meta, instants int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur < 0 || e.TS < 0 {
				fail(fmt.Sprintf("span %q has negative ts/dur", e.Name))
			}
			spans++
		case "C":
			counters++
		case "M":
			meta++
		case "i":
			instants++
		default:
			fail(fmt.Sprintf("unexpected event phase %q", e.Ph))
		}
	}
	if spans == 0 {
		fail("no complete (\"X\") spans — no transaction made it through the pipeline")
	}
	if counters == 0 {
		fail("no counter (\"C\") tracks — node telemetry missing")
	}
	fmt.Printf("ok: %d events (%d spans, %d counters, %d metadata, %d instants)\n",
		len(tf.TraceEvents), spans, counters, meta, instants)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "bidl-trace-check:", msg)
	os.Exit(1)
}
