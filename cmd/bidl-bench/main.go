// Command bidl-bench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	bidl-bench -list
//	bidl-bench -run fig3                # one experiment, full scale
//	bidl-bench -run all -scale 0.25     # quick pass over everything
//	bidl-bench -run table4 -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bidl-framework/bidl"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment ID to run (or \"all\")")
		list  = flag.Bool("list", false, "list available experiments")
		scale = flag.Float64("scale", 1.0, "load/duration scale in (0,1]")
		seed  = flag.Int64("seed", 1, "simulation seed")
		csv   = flag.String("csv", "", "also write results as CSV to this file")
		quiet = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range bidl.Experiments() {
			fmt.Printf("  %-8s %-10s %s\n", e.ID, e.Paper, e.Description)
		}
		if *run == "" {
			fmt.Println("\nrun one with: bidl-bench -run <id>")
		}
		return
	}

	opts := bidl.BenchOptions{Scale: *scale, Seed: *seed}
	if !*quiet {
		opts.Log = os.Stderr
	}

	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, e := range bidl.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	var csvOut *os.File
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	for _, id := range ids {
		table, err := bidl.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		table.Render(os.Stdout)
		if csvOut != nil {
			fmt.Fprintf(csvOut, "# %s\n", table.ID)
			table.CSV(csvOut)
		}
	}
}
