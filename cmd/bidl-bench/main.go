// Command bidl-bench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	bidl-bench -list
//	bidl-bench -run fig3                # one experiment, full scale
//	bidl-bench -run all -scale 0.25     # quick pass over everything
//	bidl-bench -run all -parallel       # sweep points across all cores
//	bidl-bench -run all -j 4 -bench-json BENCH_parallel.json
//	bidl-bench -run table4 -csv out.csv
//	bidl-bench -run fig5 -shards 4      # every BIDL point as a 4-channel deployment
//	bidl-bench -run fig5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	bidl-bench -dump-scenarios -run fig5    # the sweep as declarative JSON
//
// -dump-scenarios prints every sweep point of the selected experiments (all
// of them when -run is omitted) as declarative scenario JSON instead of
// running anything; individual specs can be replayed with
// `bidl-sim -scenario`.
//
// Sweep points are independent seeded simulations, so -j/-parallel changes
// only wall-clock time: tables are byte-identical to a serial run. The same
// holds one level down for -sim-workers, which turns on conservative
// parallel discrete-event execution (PDES) inside each simulation; see
// DESIGN.md §10.
//
// The -cpuprofile/-memprofile flags capture pprof profiles of the harness
// itself (the profile-guided-optimization loop behind `make profile`):
// inspect with `go tool pprof <binary> <profile>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"github.com/bidl-framework/bidl"
)

func main() {
	var (
		run       = flag.String("run", "", "experiment ID to run (or \"all\")")
		list      = flag.Bool("list", false, "list available experiments")
		listFlts  = flag.Bool("list-faults", false, "list the fault kinds a scenario's faults array accepts and exit")
		dump      = flag.Bool("dump-scenarios", false, "print the selected experiments' sweep points as scenario JSON and exit")
		scale     = flag.Float64("scale", 1.0, "load/duration scale in (0,1]")
		seed      = flag.Int64("seed", 1, "simulation seed")
		csv       = flag.String("csv", "", "also write results as CSV to this file")
		quiet     = flag.Bool("q", false, "suppress progress logging")
		jobs      = flag.Int("j", 1, "concurrent sweep points (1 = serial)")
		parallel  = flag.Bool("parallel", false, "shorthand for -j GOMAXPROCS")
		simWork   = flag.Int("sim-workers", 0, "PDES workers inside each simulation (0/1 = serial engine)")
		shards    = flag.Int("shards", 0, "run every BIDL sweep point sharded over this many channels (0/1 = single channel; changes what is simulated)")
		jsonOut   = flag.String("bench-json", "", "write per-experiment wall-clock/event stats as JSON to this file")
		telemetry = flag.Bool("telemetry", false, "trace every run and print per-run telemetry summaries to stderr")
		anatomy   = flag.Bool("anatomy", false, "trace every run and print per-run latency-anatomy breakdowns to stderr")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
	)
	flag.Parse()

	if *listFlts {
		fmt.Println("fault kinds (scenario `faults` array, see DESIGN.md §11):")
		for _, k := range bidl.FaultKinds() {
			fmt.Printf("  %-12s %s\n", k.Name, k.Summary)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		defer f.Close() // LIFO: closes after the profile is flushed
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bidl-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			}
		}()
	}

	if *list || (*run == "" && !*dump) {
		fmt.Println("available experiments:")
		for _, e := range bidl.Experiments() {
			fmt.Printf("  %-8s %-10s %s\n", e.ID, e.Paper, e.Description)
		}
		if *run == "" {
			fmt.Println("\nrun one with: bidl-bench -run <id>")
		}
		return
	}

	workers := *jobs
	if *parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	opts := bidl.BenchOptions{Scale: *scale, Seed: *seed, Workers: workers, SimWorkers: *simWork, Shards: *shards}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *telemetry || *anatomy {
		// Sweep points may finish concurrently (-j); serialize the reports.
		var mu sync.Mutex
		opts.TraceSink = func(tr *bidl.Tracer) {
			mu.Lock()
			defer mu.Unlock()
			if *telemetry {
				tr.WriteSummary(os.Stderr, bidl.TraceSummaryOptions{TopNodes: 5, TopTxs: 3})
			}
			if *anatomy {
				rep := bidl.ComputeAnatomy(tr.TxEvents(), tr.PhaseEvents(), bidl.AnatomyOptions{})
				if err := rep.Render(os.Stderr); err != nil {
					fmt.Fprintln(os.Stderr, "bidl-bench:", err)
				}
			}
		}
	}

	ids := []string{*run}
	if *run == "all" || *run == "" {
		ids = ids[:0]
		for _, e := range bidl.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	if *dump {
		if err := dumpScenarios(os.Stdout, ids, opts); err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		return
	}

	var csvOut *os.File
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	report := bidl.NewBenchReport(opts)
	for _, id := range ids {
		table, stats, err := bidl.MeasureExperiment(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		report.Add(stats)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s: %.2fs wall, %d virtual events (%.0f events/s)\n",
				id, stats.WallSeconds, stats.VirtualEvents, stats.EventsPerSec)
		}
		table.Render(os.Stdout)
		if csvOut != nil {
			fmt.Fprintf(csvOut, "# %s\n", table.ID)
			table.CSV(csvOut)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "bidl-bench:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// dumpScenarios writes the sweep points of the named experiments as one JSON
// array of {id, paper, scenarios} entries, preserving registry order. Each
// scenario in the output is a spec `bidl-sim -scenario` accepts verbatim.
func dumpScenarios(w io.Writer, ids []string, opts bidl.BenchOptions) error {
	type entry struct {
		ID        string          `json:"id"`
		Paper     string          `json:"paper"`
		Scenarios []bidl.Scenario `json:"scenarios"`
	}
	byID := make(map[string]bidl.Experiment)
	for _, e := range bidl.Experiments() {
		byID[e.ID] = e
	}
	entries := make([]entry, 0, len(ids))
	for _, id := range ids {
		e, ok := byID[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		entries = append(entries, entry{ID: e.ID, Paper: e.Paper, Scenarios: e.Scenarios(opts)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}
