// Command bidl-report reproduces the latency-anatomy breakdown offline from
// a raw trace export: feed it the -trace-jsonl file a run wrote and it
// prints the same critical-path tables the run's -anatomy flag would have —
// byte-identical, because both paths feed the same events into the same
// decomposition (the JSONL schema is frozen; see DESIGN.md §12).
//
// Examples:
//
//	bidl-sim -rate 4000 -duration 300ms -trace-jsonl run.jsonl
//	bidl-report -trace-jsonl run.jsonl
//	bidl-report -trace-jsonl run.jsonl -csv anatomy.csv
//	bidl-report -trace-jsonl run.jsonl -scenario chaos.json   # fault windows
//
// With -scenario, the scenario's fault schedule annotates the report with
// per-fault-window latency distributions (the windows a live run with
// `"anatomy": true` would have used).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bidl-framework/bidl"
)

func main() {
	var (
		jsonlPath = flag.String("trace-jsonl", "", "raw trace export to analyze (required)")
		csvPath   = flag.String("csv", "", "also write the breakdown as CSV to this file")
		scenPath  = flag.String("scenario", "", "scenario JSON whose fault schedule labels the report's windows")
		outPath   = flag.String("out", "-", "write the human-readable report here (\"-\" = stdout)")
	)
	flag.Parse()

	if *jsonlPath == "" {
		fmt.Fprintln(os.Stderr, "usage: bidl-report -trace-jsonl <file> [-csv file] [-scenario file] [-out file]")
		os.Exit(2)
	}

	f, err := os.Open(*jsonlPath)
	if err != nil {
		fail(err)
	}
	data, err := bidl.ValidateTraceJSONL(f)
	f.Close()
	if err != nil {
		fail(fmt.Errorf("%s: %w", *jsonlPath, err))
	}

	var opts bidl.AnatomyOptions
	if *scenPath != "" {
		raw, err := os.ReadFile(*scenPath)
		if err != nil {
			fail(err)
		}
		spec, err := bidl.ParseScenario(raw)
		if err != nil {
			fail(fmt.Errorf("%s: %w", *scenPath, err))
		}
		if err := spec.Validate(); err != nil {
			fail(fmt.Errorf("%s: %w", *scenPath, err))
		}
		opts.Windows = spec.AnatomyWindows()
	}

	rep := bidl.ComputeAnatomy(data.TxEvents, data.PhaseEvents, opts)

	out := os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.Render(out); err != nil {
		fail(err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := rep.CSV(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bidl-report:", err)
	os.Exit(1)
}
