// Command bidl-sim runs a single configurable BIDL deployment and reports
// headline metrics — a playground for exploring the design space.
//
// Examples:
//
//	bidl-sim                                    # paper setting A, 20k txns/s
//	bidl-sim -orgs 25 -protocol hotstuff -rate 30000
//	bidl-sim -contention 0.5 -duration 2s
//	bidl-sim -attack broadcaster                # watch the denylist engage
//	bidl-sim -dcs 4 -inter-gbps 1               # 4 datacenters, 1 Gbps pipes
//	bidl-sim -runs 8 -j 4                       # 8 seeds, 4 at a time
//	bidl-sim -sim-workers 4                     # PDES inside the run; same output
//	bidl-sim -shards 4 -cross-shard 0.05        # 4 sharded channels, 5% 2PC traffic
//	bidl-sim -scenario examples/scenario-fig5.json
//
// With -runs N, seeds seed..seed+N-1 execute as independent simulations on
// -j concurrent workers; per-seed results print in seed order and are
// identical to running each seed alone.
//
// With -scenario FILE, the deployment is described by a declarative JSON
// scenario (see DESIGN.md §9) instead of the topology/workload/attack flags,
// which are ignored; -seed, -runs, -j, -timeline, and the trace flags still
// apply. `bidl-bench -dump-scenarios` emits the registry's specs in the same
// format as a starting point.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bidl-framework/bidl"
)

func main() {
	var (
		orgs       = flag.Int("orgs", 50, "number of organizations")
		nnPerOrg   = flag.Int("nodes-per-org", 1, "normal nodes per organization")
		consensus  = flag.Int("consensus", 4, "number of consensus nodes (3f+1)")
		protocol   = flag.String("protocol", bidl.ProtoBFTSmart, "bft-smart|hotstuff|zyzzyva|sbft")
		rate       = flag.Float64("rate", 20000, "offered load (txns/s)")
		duration   = flag.Duration("duration", time.Second, "load window (virtual time)")
		contention = flag.Float64("contention", 0, "contention ratio [0,1)")
		nondet     = flag.Float64("nondet", 0, "non-deterministic txn ratio [0,1)")
		loss       = flag.Float64("loss", 0, "packet loss rate [0,1)")
		dcs        = flag.Int("dcs", 1, "number of datacenters")
		interGbps  = flag.Float64("inter-gbps", 0, "shared inter-DC bandwidth (0 = unlimited)")
		attackMode = flag.String("attack", "none", "none|leader|broadcaster|smart")
		scenPath   = flag.String("scenario", "", "run a declarative scenario JSON file (topology/workload/attack flags are ignored)")
		listFaults = flag.Bool("list-faults", false, "list the fault kinds a scenario's faults array accepts and exit")
		simWork    = flag.Int("sim-workers", 0, "PDES workers inside the simulation (0/1 = serial engine)")
		shards     = flag.Int("shards", 0, "shard the deployment into this many BIDL channels (0/1 = single channel)")
		crossShard = flag.Float64("cross-shard", 0, "cross-shard transfer ratio [0,1] (requires -shards > 1)")
		seed       = flag.Int64("seed", 1, "simulation seed (first seed with -runs)")
		runs       = flag.Int("runs", 1, "independent runs on consecutive seeds")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent runs with -runs > 1")
		timeline   = flag.Bool("timeline", false, "print a 100ms-bucket throughput timeline (single run only)")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto; single run only)")
		traceJSONL = flag.String("trace-jsonl", "", "write raw trace events as JSON lines (single run only)")
		telemetry  = flag.Bool("telemetry", false, "print per-node/per-link telemetry and slowest-transaction spans")
		anatomyOut = flag.String("anatomy", "", "write the critical-path latency anatomy report to this file (\"-\" = stdout; single run only)")
		anatomyCSV = flag.String("anatomy-csv", "", "also write the latency anatomy as CSV to this file (single run only)")
		heapCheck  = flag.Int64("heap-check", 0, "after all runs, GC and fail if the live heap exceeds this many bytes (0 = off)")
	)
	flag.Parse()

	if *listFaults {
		fmt.Println("fault kinds (scenario `faults` array, see DESIGN.md §11):")
		for _, k := range bidl.FaultKinds() {
			fmt.Printf("  %-12s %s\n", k.Name, k.Summary)
		}
		return
	}

	tracing := *traceOut != "" || *traceJSONL != "" || *telemetry || *anatomyOut != "" || *anatomyCSV != ""
	if tracing && *runs != 1 {
		fmt.Fprintln(os.Stderr, "bidl-sim: -trace/-trace-jsonl/-telemetry/-anatomy require -runs 1")
		os.Exit(2)
	}

	// In scenario mode the spec supplies topology, workload, load, and
	// attack; loadWindow/loadRate/total feed the report lines and timeline
	// bucketing in both modes.
	var spec bidl.Scenario
	loadWindow, loadRate := *duration, *rate
	total := *duration + 500*time.Millisecond
	if *scenPath != "" {
		data, err := os.ReadFile(*scenPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bidl-sim:", err)
			os.Exit(1)
		}
		spec, err = bidl.ParseScenario(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bidl-sim: %s: %v\n", *scenPath, err)
			os.Exit(1)
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "bidl-sim: %s: %v\n", *scenPath, err)
			os.Exit(1)
		}
		loadWindow, loadRate = spec.Load.Window.D(), spec.Load.Rate
		drain := spec.Load.Drain.D()
		if drain == 0 {
			drain = 500 * time.Millisecond
		}
		total = loadWindow + drain
		// The spec's own seed is the first seed unless -seed is given.
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		if !seedSet {
			*seed = spec.EffectiveSeed()
		}
		name := spec.Name
		if name == "" {
			name = *scenPath
		}
		fmt.Printf("scenario %q: framework=%s\n", name, spec.WithDefaults().Framework)
	}

	// -shards in flag mode synthesizes a declarative spec from the topology/
	// workload/load flags and runs it through the scenario driver — the
	// multi-channel harness is a scenario-layer construct, not a Cluster
	// mode. In scenario mode the flag overlays a spec that leaves `shards`
	// unset, mirroring -sim-workers.
	useSpec := *scenPath != ""
	if !useSpec && *shards > 1 {
		if *attackMode != "none" {
			fmt.Fprintln(os.Stderr, "bidl-sim: -shards is incompatible with -attack (use a scenario faults schedule)")
			os.Exit(2)
		}
		spec.Shards = *shards
		spec.CrossShardRatio = *crossShard
		spec.Protocol = *protocol
		spec.Seed = *seed
		spec.Nodes.Orgs = *orgs
		spec.Nodes.PerOrg = *nnPerOrg
		spec.Nodes.Consensus = *consensus
		spec.Nodes.Datacenters = *dcs
		spec.Topology.LossRate = *loss
		spec.Topology.InterDCGbps = *interGbps
		spec.Workload.Contention = *contention
		spec.Workload.Nondet = *nondet
		spec.Load.Rate = *rate
		spec.Load.Window = bidl.ScenarioDuration(*duration)
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "bidl-sim:", err)
			os.Exit(2)
		}
		useSpec = true
		fmt.Printf("sharded deployment: %d channels, cross-shard ratio %g\n", *shards, *crossShard)
	}

	type outcome struct {
		seed      int64
		submitted int
		summary   bidl.Summary
		report    string
		safetyErr error
		timeline  []float64
		tracer    *bidl.Tracer
		reg       *bidl.Registry
	}

	runOne := func(runSeed int64) outcome {
		cfg := bidl.DefaultConfig()
		cfg.NumOrgs = *orgs
		cfg.NormalPerOrg = *nnPerOrg
		cfg.NumConsensus = *consensus
		cfg.F = (*consensus - 1) / 3
		cfg.Protocol = *protocol
		cfg.Seed = runSeed
		cfg.NumDCs = *dcs
		cfg.Topology.LossRate = *loss
		if *dcs > 1 {
			cfg.Topology = bidl.MultiDCTopology(bidl.GbpsBandwidth(*interGbps))
			cfg.Topology.LossRate = *loss
			cfg.ViewTimeout = 400 * time.Millisecond
			cfg.BlockTimeout = 25 * time.Millisecond
		}

		if tracing {
			cfg.Tracer = bidl.NewTracer(bidl.TraceOptions{})
		}
		// Attacks mutate cluster state through paths the partitioned engine
		// does not order, so PDES applies only to attack-free runs (the
		// scenario layer enforces the same rule).
		if *attackMode == "none" {
			cfg.SimWorkers = *simWork
		}

		w := bidl.DefaultWorkload(*orgs)
		w.ContentionRatio = *contention
		w.NondetRatio = *nondet
		w.Seed = runSeed

		sys := bidl.NewSystem(cfg, w)

		switch *attackMode {
		case "none":
		case "leader":
			bidl.EnableMaliciousLeader(sys.Cluster, sys.Cluster.LeaderIndex())
		case "broadcaster", "smart":
			bcfg := bidl.DefaultBroadcasterConfig()
			if *attackMode == "smart" {
				bcfg.TargetLeader = sys.Cluster.LeaderIndex()
			}
			b := bidl.NewBroadcaster(sys.Cluster, sys.Gen, bcfg)
			b.Start(*duration / 5)
		default:
			fmt.Fprintf(os.Stderr, "bidl-sim: unknown attack %q\n", *attackMode)
			os.Exit(2)
		}

		n := sys.SubmitRate(*rate, *duration)
		sys.Run(*duration + 500*time.Millisecond)

		col := sys.Collector()
		out := outcome{
			seed:      runSeed,
			submitted: n,
			summary:   sys.Summary(*duration/5, *duration),
			report: fmt.Sprintf("view_changes=%d conflicts=%d reexecuted=%d denied_clients=%d",
				col.ViewChanges, col.Conflicts, col.Reexecuted, col.DeniedClients),
			safetyErr: sys.CheckSafety(),
		}
		if *timeline && *runs == 1 {
			out.timeline = col.Timeline(100*time.Millisecond, total)
		}
		out.tracer = cfg.Tracer
		out.reg = col.Reg
		return out
	}

	if useSpec {
		runOne = func(runSeed int64) outcome {
			sp := spec
			sp.Seed = runSeed
			if *simWork > 1 && sp.SimWorkers == 0 {
				sp.SimWorkers = *simWork
			}
			if *shards > 1 && sp.Shards == 0 {
				sp.Shards = *shards
			}
			if *crossShard > 0 && sp.Shards > 1 && sp.CrossShardRatio == 0 {
				sp.CrossShardRatio = *crossShard
			}
			rc := bidl.ScenarioRunConfig{}
			if tracing {
				rc.Tracer = bidl.NewTracer(bidl.TraceOptions{})
			}
			res, err := bidl.RunScenarioWith(sp, rc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bidl-sim:", err)
				os.Exit(1)
			}
			col := res.Collector
			out := outcome{
				seed:      runSeed,
				submitted: res.Submitted,
				summary: bidl.Summary{
					Throughput:  res.Throughput,
					AvgLatency:  res.AvgLatency,
					P99Latency:  res.P99,
					Committed:   col.NumCommitted(),
					AbortRate:   res.AbortRate,
					SpecSuccess: res.SpecSuccess,
				},
				report: fmt.Sprintf("view_changes=%d conflicts=%d reexecuted=%d denied_clients=%d",
					col.ViewChanges, col.Conflicts, col.Reexecuted, col.DeniedClients),
				safetyErr: res.SafetyErr,
				tracer:    rc.Tracer,
				reg:       col.Reg,
			}
			if *timeline && *runs == 1 {
				out.timeline = col.Timeline(100*time.Millisecond, total)
			}
			return out
		}
	}

	// Fan the seeds out to a worker pool; results land in seed order.
	outcomes := make([]outcome, *runs)
	workers := *jobs
	if workers < 1 {
		workers = 1
	}
	if workers > *runs {
		workers = *runs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *runs {
					return
				}
				outcomes[i] = runOne(*seed + int64(i))
			}
		}()
	}
	wg.Wait()

	failed := false
	var sumTput float64
	for _, out := range outcomes {
		if *runs > 1 {
			fmt.Printf("--- seed %d ---\n", out.seed)
		}
		fmt.Printf("submitted %d transactions over %v at %.0f txns/s\n", out.submitted, loadWindow, loadRate)
		fmt.Println(out.summary)
		fmt.Println(out.report)
		if out.safetyErr != nil {
			fmt.Fprintln(os.Stderr, "SAFETY VIOLATION:", out.safetyErr)
			failed = true
		} else {
			fmt.Println("safety check: all correct nodes consistent")
		}
		sumTput += out.summary.Throughput
		if out.timeline != nil {
			fmt.Println("\nthroughput timeline (100ms buckets):")
			for i, v := range out.timeline {
				fmt.Printf("  %5.1fs %8.0f txns/s\n", float64(i)*0.1, v)
			}
		}
	}
	if *runs > 1 {
		fmt.Printf("--- aggregate over %d seeds: mean throughput %.0f txns/s ---\n",
			*runs, sumTput/float64(*runs))
	}
	if tracing {
		tr := outcomes[0].tracer
		if *telemetry {
			fmt.Println()
			tr.WriteSummary(os.Stdout, bidl.TraceSummaryOptions{})
			if reg := outcomes[0].reg; reg != nil {
				fmt.Println()
				if err := reg.WriteSummary(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "bidl-sim:", err)
					failed = true
				}
			}
		}
		if *anatomyOut != "" || *anatomyCSV != "" {
			// Fault windows come from the scenario's schedule (flag mode has
			// no faults); offline, bidl-report -scenario recovers the same.
			var windows []bidl.AnatomyWindow
			if *scenPath != "" {
				windows = spec.AnatomyWindows()
			}
			rep := bidl.ComputeAnatomy(tr.TxEvents(), tr.PhaseEvents(),
				bidl.AnatomyOptions{Windows: windows})
			if *anatomyOut == "-" {
				fmt.Println()
				if err := rep.Render(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "bidl-sim:", err)
					failed = true
				}
			} else if *anatomyOut != "" {
				if err := writeTraceFile(*anatomyOut, rep.Render); err != nil {
					fmt.Fprintln(os.Stderr, "bidl-sim:", err)
					failed = true
				} else {
					fmt.Printf("wrote latency anatomy to %s\n", *anatomyOut)
				}
			}
			if *anatomyCSV != "" {
				if err := writeTraceFile(*anatomyCSV, rep.CSV); err != nil {
					fmt.Fprintln(os.Stderr, "bidl-sim:", err)
					failed = true
				} else {
					fmt.Printf("wrote latency anatomy CSV to %s\n", *anatomyCSV)
				}
			}
		}
		if *traceOut != "" {
			if err := writeTraceFile(*traceOut, tr.WriteChromeTrace); err != nil {
				fmt.Fprintln(os.Stderr, "bidl-sim:", err)
				failed = true
			} else {
				fmt.Printf("wrote Chrome trace to %s (open in Perfetto / chrome://tracing)\n", *traceOut)
			}
		}
		if *traceJSONL != "" {
			if err := writeTraceFile(*traceJSONL, tr.WriteJSONL); err != nil {
				fmt.Fprintln(os.Stderr, "bidl-sim:", err)
				failed = true
			} else {
				fmt.Printf("wrote trace events to %s\n", *traceJSONL)
			}
		}
	}
	// The heap check is the memory side of `make workload-smoke`: after every
	// run completes (results retained, clusters collectable) the live heap
	// must fit the stated budget. A million-account scenario only passes
	// because prepopulation shares one copy-on-write base per generator
	// instead of materializing O(accounts) entries per node.
	if *heapCheck > 0 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > uint64(*heapCheck) {
			fmt.Fprintf(os.Stderr, "bidl-sim: heap-check FAILED: live heap %.1f MiB exceeds limit %.1f MiB\n",
				float64(ms.HeapAlloc)/(1<<20), float64(*heapCheck)/(1<<20))
			failed = true
		} else {
			fmt.Printf("heap-check: live heap %.1f MiB within limit %.1f MiB\n",
				float64(ms.HeapAlloc)/(1<<20), float64(*heapCheck)/(1<<20))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeTraceFile streams one export into path.
func writeTraceFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
