// Trading: the paper's motivating scenario (§1) — an in-datacenter stock
// exchange needs ~50k txns/s with tens-of-milliseconds commit latency.
// This example drives BIDL at exchange-scale load and reports the latency
// distribution a trading desk would care about.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/bidl-framework/bidl"
)

func main() {
	cfg := bidl.DefaultConfig() // paper setting A: 4 consensus nodes, 50 orgs

	w := bidl.DefaultWorkload(cfg.NumOrgs)
	w.NumClients = 100 // the paper's client count
	w.Accounts = 10000

	sys := bidl.NewSystem(cfg, w)

	// Ramp through three one-second trading bursts: 10k, 25k, 40k txns/s.
	window := time.Second
	var marks []time.Duration
	start := time.Duration(0)
	for _, rate := range []float64{10000, 25000, 40000} {
		n := 0
		acc := 0.0
		for at := start; at < start+window; at += time.Millisecond {
			acc += rate / 1000
			if k := int(acc); k > 0 {
				acc -= float64(k)
				sys.Submit(at, sys.Gen.Batch(k)...)
				n += k
			}
		}
		marks = append(marks, start)
		start += window
	}
	sys.Run(start + 500*time.Millisecond)

	fmt.Println("BIDL as an in-datacenter exchange (SmallBank transfers)")
	col := sys.Collector()
	for i, rate := range []float64{10000, 25000, 40000} {
		from, to := marks[i], marks[i]+window
		fmt.Printf("  burst %.0fk txns/s: throughput=%.0f avg=%v p50=%v p99=%v\n",
			rate/1000,
			col.EffectiveThroughput(from+200*time.Millisecond, to),
			col.AvgLatency(from+200*time.Millisecond, to).Round(10*time.Microsecond),
			col.PercentileLatency(0.5, from+200*time.Millisecond, to).Round(10*time.Microsecond),
			col.PercentileLatency(0.99, from+200*time.Millisecond, to).Round(10*time.Microsecond))
	}
	if err := sys.CheckSafety(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  safety: all correct nodes consistent")
}
