// Quickstart: build a BIDL network, submit SmallBank transfers, and watch
// them commit with speculative execution.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/bidl-framework/bidl"
)

func main() {
	// A small deployment: 4 consensus nodes (tolerating 1 Byzantine),
	// 8 organizations with one normal node each.
	cfg := bidl.DefaultConfig()
	cfg.NumOrgs = 8
	cfg.BlockSize = 100
	cfg.BlockTimeout = 5 * time.Millisecond

	w := bidl.DefaultWorkload(cfg.NumOrgs)
	w.NumClients = 10
	w.Accounts = 1000

	sys := bidl.NewSystem(cfg, w)

	// Submit 500 money transfers over 50 ms of virtual time.
	for i := 0; i < 500; i++ {
		sys.Submit(time.Duration(i)*100*time.Microsecond, sys.Gen.Next())
	}
	sys.Run(time.Second)

	fmt.Println("BIDL quickstart")
	fmt.Println("  ", sys.Summary(0, time.Second))
	fmt.Printf("   blocks committed: %d\n", sys.Cluster.TotalCommitHeight())

	// The safety guarantee (§3.1): every correct node holds the same chain
	// and organizations agree on the world state.
	if err := sys.CheckSafety(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   safety: all correct nodes consistent")

	// Peek at an account balance on an organization's normal node.
	if val, _, ok := sys.Cluster.Orgs[0][0].State().Get("sb:chk:acct-0"); ok {
		fmt.Printf("   acct-0 checking balance at org0: %s\n", val)
	}
}
