// Multi-datacenter: the §6.4 deployment — four datacenters connected by
// dedicated cables with 20 ms RTT and limited shared bandwidth. IP multicast
// and consensus-on-hash let BIDL cross the inter-DC pipes once per payload;
// with both optimizations disabled, the same payload crosses once per
// receiver and throughput collapses as bandwidth tightens.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/bidl-framework/bidl"
)

func main() {
	const rate = 15000
	window := time.Second

	run := func(gbps float64, optDisabled bool) (float64, uint64) {
		cfg := bidl.DefaultConfig()
		cfg.NumDCs = 4
		cfg.Topology = bidl.MultiDCTopology(bidl.GbpsBandwidth(gbps))
		cfg.Topology.InterLatency = 10 * time.Millisecond // 20 ms RTT
		cfg.ViewTimeout = 400 * time.Millisecond
		cfg.BlockTimeout = 25 * time.Millisecond
		if optDisabled {
			cfg.DisableMulticast = true
			cfg.ConsensusOnPayload = true
		}
		sys := bidl.NewSystem(cfg, bidl.DefaultWorkload(cfg.NumOrgs))
		sys.SubmitRate(rate, window)
		sys.Run(window + time.Second)
		if err := sys.CheckSafety(); err != nil {
			log.Fatal(err)
		}
		return sys.Summary(300*time.Millisecond, window).Throughput,
			sys.Cluster.Net.InterDCBytes()
	}

	fmt.Println("BIDL across 4 datacenters (20 ms inter-DC RTT), offered 15k txns/s")
	fmt.Println("bandwidth   bidl txns/s  (interDC MB)   opt-disabled txns/s  (interDC MB)")
	for _, gbps := range []float64{10, 2, 1} {
		t1, b1 := run(gbps, false)
		t2, b2 := run(gbps, true)
		fmt.Printf("  %4.1f Gbps  %9.0f     (%6.1f)      %9.0f          (%6.1f)\n",
			gbps, t1, float64(b1)/1e6, t2, float64(b2)/1e6)
	}
	fmt.Println("\nIP multicast + consensus-on-hash cross each inter-DC pipe once per")
	fmt.Println("payload; disabling them multiplies inter-DC traffic by the receiver count.")
}
