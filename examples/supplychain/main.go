// Supply chain: the paper cites supply chains as workloads with over 40%
// contending transactions (§1). Hot items (popular SKUs) make transfers
// collide; execute-order-validate frameworks abort those in MVCC validation
// while BIDL's sequence-ordered speculation commits them all (§6.3).
//
// This example runs the same contended workload on BIDL and on FastFabric
// and compares abort rates.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/bidl-framework/bidl"
)

const (
	rate       = 15000
	window     = time.Second
	contention = 0.5 // half of all transfers touch the 1% hot accounts
)

func main() {
	fmt.Printf("Supply-chain workload: %.0f%% of transfers touch hot items\n\n", contention*100)

	// BIDL.
	cfg := bidl.DefaultConfig()
	cfg.NumOrgs = 20
	w := bidl.DefaultWorkload(cfg.NumOrgs)
	w.ContentionRatio = contention
	sys := bidl.NewSystem(cfg, w)
	sys.SubmitRate(rate, window)
	sys.Run(window + 500*time.Millisecond)
	b := sys.Summary(200*time.Millisecond, window)
	if err := sys.CheckSafety(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  BIDL:       throughput=%.0f txns/s abort_rate=%.1f%% (sequence-ordered execution)\n",
		b.Throughput, b.AbortRate*100)

	// FastFabric on the identical workload.
	fcfg := bidl.DefaultBaselineConfig(bidl.FastFabric)
	fcfg.NumOrgs = 20
	fw := bidl.DefaultWorkload(fcfg.NumOrgs)
	fw.ContentionRatio = contention
	fsys := bidl.NewBaselineSystem(fcfg, fw)
	fsys.SubmitRate(rate, window)
	fsys.Run(window + 500*time.Millisecond)
	f := fsys.Summary(200*time.Millisecond, window)
	if err := fsys.CheckSafety(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FastFabric: throughput=%.0f txns/s abort_rate=%.1f%% (MVCC aborts: %d)\n",
		f.Throughput, f.AbortRate*100, fsys.Collector().MVCCAborts)

	fmt.Println("\nBIDL eliminates contention aborts by executing contending transactions")
	fmt.Println("in sequence-number order (§4.3); FastFabric endorses them in parallel")
	fmt.Println("against the same snapshot and aborts the losers in validation.")
}
