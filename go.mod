module github.com/bidl-framework/bidl

go 1.22
