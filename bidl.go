// Package bidl is the public API of the BIDL framework reproduction: a
// high-throughput, low-latency permissioned blockchain for datacenter
// networks (Qi, Chen, et al., SOSP 2021), implemented as a deterministic
// discrete-event simulation with every substrate built from scratch.
//
// The package re-exports the curated surface of the internal packages:
// cluster construction, SmallBank workload generation, the metrics
// collector, and the benchmark harness that regenerates every table and
// figure of the paper's evaluation. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	sys := bidl.NewSystem(bidl.DefaultConfig(), bidl.DefaultWorkload(50))
//	sys.SubmitRate(20000, time.Second)        // 20k txns/s for 1s
//	sys.Run(2 * time.Second)
//	fmt.Println(sys.Summary(0, time.Second))
package bidl

import (
	"fmt"
	"io"
	"time"

	"github.com/bidl-framework/bidl/internal/attack"
	"github.com/bidl-framework/bidl/internal/baseline/fabric"
	"github.com/bidl-framework/bidl/internal/bench"
	"github.com/bidl-framework/bidl/internal/chaos"
	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/scenario"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/trace/anatomy"
	"github.com/bidl-framework/bidl/internal/types"
	"github.com/bidl-framework/bidl/internal/workload"
)

// Curated re-exports. Aliases keep one canonical definition while giving
// users a single import.
type (
	// Config parameterizes a BIDL deployment (§3, §6 settings).
	Config = core.Config
	// Cluster is a running BIDL deployment over the simulated datacenter.
	Cluster = core.Cluster
	// Transaction is a client-signed smart-contract invocation.
	Transaction = types.Transaction
	// WorkloadConfig parameterizes the SmallBank workload (§6).
	WorkloadConfig = workload.Config
	// Generator produces signed SmallBank transactions.
	Generator = workload.Generator
	// Collector accumulates throughput/latency/abort measurements.
	Collector = metrics.Collector
	// Topology describes the simulated datacenter network.
	Topology = simnet.Topology
	// BenchOptions tunes experiment runs (Workers > 1 or < 0 enables the
	// parallel sweep runner; tables are identical either way).
	BenchOptions = bench.Options
	// BenchTable is a rendered experiment result.
	BenchTable = bench.Table
	// BenchStats records one experiment's wall-clock and virtual-event cost.
	BenchStats = bench.RunStats
	// BenchReport aggregates BenchStats for a harness invocation
	// (the BENCH_*.json perf trail).
	BenchReport = bench.Report
	// Experiment regenerates one of the paper's tables or figures.
	Experiment = bench.Experiment
	// BaselineVariant selects HLF, FastFabric, or StreamChain.
	BaselineVariant = fabric.Variant
	// BaselineConfig parameterizes an HLF/FastFabric/StreamChain cluster.
	BaselineConfig = fabric.Config
	// BaselineCluster is a running baseline deployment.
	BaselineCluster = fabric.Cluster
	// BroadcasterConfig tunes the §6.2 malicious broadcaster.
	BroadcasterConfig = attack.BroadcasterConfig
	// Broadcaster is the malicious-broadcaster adversary.
	Broadcaster = attack.Broadcaster
	// Tracer records per-transaction lifecycle spans and node/link
	// telemetry; attach one via Config.Tracer / BaselineConfig.Tracer.
	Tracer = trace.Tracer
	// TraceOptions tunes a Tracer's bucket width and ring capacities.
	TraceOptions = trace.Options
	// TraceSummaryOptions tunes Tracer.WriteSummary.
	TraceSummaryOptions = trace.SummaryOptions
	// Scenario is the declarative, JSON-round-trippable experiment spec:
	// one value describes a complete simulated deployment and run
	// (framework, protocol, topology, workload, attack, load, seed).
	Scenario = scenario.Scenario
	// ScenarioResult summarizes one scenario run.
	ScenarioResult = scenario.Result
	// ScenarioRunConfig carries runtime-only knobs (tracer, observer).
	ScenarioRunConfig = scenario.RunConfig
	// ScenarioDuration is the scenario spec's human-readable duration type
	// ("150ms"-style JSON), for building Scenario values in Go.
	ScenarioDuration = scenario.Duration
	// ShardedHarness runs N independently sequenced BIDL channels over one
	// shared simulation with 2PC for cross-shard transactions (DESIGN.md
	// §14); scenarios with `shards` > 1 compile to it.
	ShardedHarness = scenario.ShardedHarness
	// Harness is the framework-agnostic cluster surface the scenario
	// driver runs against; Cluster and BaselineCluster both implement it.
	Harness = scenario.Harness
	// FaultKind describes one fault-injection kind (name + summary) for
	// CLI listings.
	FaultKind = chaos.KindInfo
	// Registry holds named counters and log2-bucket histograms; every
	// Collector carries one as Collector.Reg.
	Registry = metrics.Registry
	// AnatomyReport is a critical-path latency decomposition computed from
	// trace events (see DESIGN.md §12).
	AnatomyReport = anatomy.Report
	// AnatomyOptions tunes anatomy computation (fault windows to annotate).
	AnatomyOptions = anatomy.Options
	// AnatomyWindow labels a time interval (e.g. a fault) for per-window
	// latency annotation in an AnatomyReport.
	AnatomyWindow = anatomy.Window
	// TraceJSONL is the decoded content of a -trace-jsonl export.
	TraceJSONL = trace.JSONLData
	// GateMetric is one baseline-vs-current perf-gate comparison.
	GateMetric = bench.GateMetric
	// GateReport is the per-metric delta table of one perf-gate run.
	GateReport = bench.GateReport
	// GateTolerances bundles the perf gate's tunable limits.
	GateTolerances = bench.GateTolerances
	// HotpathStats is the gated slice of a hot-path microbenchmark entry.
	HotpathStats = bench.HotpathStats
	// WorkloadStats is the gated slice of the workload microbenchmark
	// baseline (BENCH_workload.json).
	WorkloadStats = bench.WorkloadStats
	// PrepopPoint is one account count on the memory-per-account curve.
	PrepopPoint = bench.PrepopPoint
)

// FaultKinds returns the fault-injection taxonomy accepted by a scenario's
// `faults` array, in a stable order — the `-list-faults` surface of the
// CLIs (see DESIGN.md §11).
func FaultKinds() []FaultKind { return chaos.Kinds() }

// Protocol names for Config.Protocol.
const (
	ProtoBFTSmart = core.ProtoPBFT
	ProtoHotStuff = core.ProtoHotStuff
	ProtoZyzzyva  = core.ProtoZyzzyva
	ProtoSBFT     = core.ProtoSBFT
)

// Baseline variants.
const (
	HLF         = fabric.HLF
	FastFabric  = fabric.FastFabric
	StreamChain = fabric.StreamChain
)

// DefaultConfig returns the paper's evaluation setting A (4 consensus
// nodes, 50 organizations).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultWorkload returns the standard SmallBank workload over numOrgs
// organizations.
func DefaultWorkload(numOrgs int) WorkloadConfig { return workload.DefaultConfig(numOrgs) }

// DefaultTopology returns the paper's single-datacenter network (0.2 ms
// RTT, 40 Gbps).
func DefaultTopology() Topology { return simnet.DefaultTopology() }

// NewTracer returns a tracing sink; attach it via Config.Tracer (or
// BaselineConfig.Tracer) before building the cluster. Zero options pick
// 10 ms telemetry buckets and a 256k-event span ring.
func NewTracer(o TraceOptions) *Tracer { return trace.New(o) }

// MultiDCTopology returns the §6.4 cross-datacenter network with the given
// shared inter-datacenter bandwidth in bytes/s (see GbpsBandwidth).
func MultiDCTopology(interDCBandwidth int64) Topology {
	return simnet.MultiDCTopology(interDCBandwidth)
}

// GbpsBandwidth converts gigabits per second to the byte/s unit topologies
// use.
func GbpsBandwidth(gbps float64) int64 { return int64(gbps * float64(simnet.Gbps)) }

// NewBaseline builds an HLF/FastFabric/StreamChain cluster.
func NewBaseline(cfg BaselineConfig) *BaselineCluster { return fabric.NewCluster(cfg) }

// DefaultBaselineConfig returns setting A for the given baseline variant.
func DefaultBaselineConfig(v fabric.Variant) BaselineConfig { return fabric.DefaultConfig(v) }

// NewBroadcaster attaches the §6.2 malicious broadcaster to a cluster.
func NewBroadcaster(c *Cluster, gen *Generator, cfg BroadcasterConfig) *Broadcaster {
	return attack.NewBroadcaster(c, gen, cfg)
}

// DefaultBroadcasterConfig returns an always-on broadcaster configuration.
func DefaultBroadcasterConfig() BroadcasterConfig { return attack.DefaultBroadcasterConfig() }

// EnableMaliciousLeader turns consensus node idx's sequencer malicious
// (Table 4 S2).
func EnableMaliciousLeader(c *Cluster, idx int) { attack.EnableMaliciousLeader(c, idx) }

// Scenario framework names.
const (
	FrameworkBIDL        = scenario.FrameworkBIDL
	FrameworkHLF         = scenario.FrameworkHLF
	FrameworkFastFabric  = scenario.FrameworkFastFabric
	FrameworkStreamChain = scenario.FrameworkStreamChain
)

// ParseScenario decodes a user-authored scenario from JSON, rejecting
// unknown fields so typos surface as errors.
func ParseScenario(data []byte) (Scenario, error) { return scenario.Parse(data) }

// RunScenario validates and executes a declarative scenario through the
// shared framework-agnostic driver.
func RunScenario(s Scenario) (ScenarioResult, error) { return scenario.Run(s) }

// RunScenarioWith is RunScenario with runtime knobs (tracing, observers).
func RunScenarioWith(s Scenario, rc ScenarioRunConfig) (ScenarioResult, error) {
	return scenario.RunWith(s, rc)
}

// Experiments lists every registered paper experiment.
func Experiments() []Experiment { return bench.All() }

// RunExperiment regenerates a paper artifact by ID (fig3, fig5, fig6,
// table2, table3, table4, fig7, fig8, fig9, fig10, ablation).
func RunExperiment(id string, opts BenchOptions) (*BenchTable, error) {
	e, ok := bench.Get(id)
	if !ok {
		return nil, fmt.Errorf("bidl: unknown experiment %q", id)
	}
	return e.Run(opts)
}

// MeasureExperiment runs an experiment and also reports its wall-clock
// seconds and executed virtual events, for the BENCH_*.json perf trail.
func MeasureExperiment(id string, opts BenchOptions) (*BenchTable, BenchStats, error) {
	return bench.Measure(id, opts)
}

// NewBenchReport returns an empty report stamped with the options'
// execution parameters; Add BenchStats to it and WriteJSON the result.
func NewBenchReport(opts BenchOptions) *BenchReport { return bench.NewReport(opts) }

// ComputeAnatomy decomposes traced transaction lifecycles into a
// critical-path latency report: per-stage waits in observed pipeline order,
// end-to-end percentiles, consensus phase-transition timings, and the
// speculative-execution overlap ratio. The inputs are a Tracer's TxEvents
// and PhaseEvents — live from Tracer methods, or offline from a
// -trace-jsonl file via ReadTraceJSONL (both yield byte-identical reports).
func ComputeAnatomy(txEvents []trace.TxEvent, phaseEvents []trace.PhaseEvent, o AnatomyOptions) *AnatomyReport {
	return anatomy.Compute(txEvents, phaseEvents, o)
}

// ReadTraceJSONL decodes a -trace-jsonl export, rejecting unknown fields
// and malformed records (the schema is frozen; see DESIGN.md §12).
func ReadTraceJSONL(r io.Reader) (*TraceJSONL, error) { return trace.ReadJSONL(r) }

// ValidateTraceJSONL is ReadTraceJSONL plus semantic checks: per-transaction
// stage timestamps must be non-negative and monotonically non-decreasing.
func ValidateTraceJSONL(r io.Reader) (*TraceJSONL, error) { return trace.ValidateJSONL(r) }

// DefaultGateTolerances returns the perf gate's portable defaults: tight on
// machine-independent counters, loose on wall-clock rates.
func DefaultGateTolerances() GateTolerances { return bench.DefaultGateTolerances() }

// CompareBenchStats gates a fresh experiment measurement against its
// committed BENCH_*.json trail entry (virtual events exactly,
// events/wall-second within tolerance).
func CompareBenchStats(baseline, current BenchStats, tol GateTolerances) *GateReport {
	return bench.CompareRunStats(baseline, current, tol)
}

// CompareShardingStats gates a fresh sharding-experiment measurement against
// its BENCH_sharding.json entry: virtual events exactly, event throughput
// loosely both in aggregate and per sequenced channel.
func CompareShardingStats(baseline, current BenchStats, channels int, tol GateTolerances) *GateReport {
	return bench.CompareShardingStats(baseline, current, channels, tol)
}

// ShardingChannels returns the total number of independently sequenced
// channels across the sharding experiment's sweep — the per-channel
// normalization divisor used by CompareShardingStats.
func ShardingChannels() int { return bench.ShardingChannels() }

// CompareHotpath gates a fresh hot-path benchmark run against the committed
// microbenchmark baseline.
func CompareHotpath(baseline, current HotpathStats, tol GateTolerances) *GateReport {
	return bench.CompareHotpath(baseline, current, tol)
}

// CompareWorkload gates fresh workload microbenchmark runs (prepopulation
// cost, per-transaction generation cost, memory-per-account flatness)
// against the committed BENCH_workload.json baseline.
func CompareWorkload(baseline, current WorkloadStats, tol GateTolerances) *GateReport {
	return bench.CompareWorkload(baseline, current, tol)
}

// LoadBenchReport parses a committed BENCH_serial.json-style trail file.
func LoadBenchReport(path string) (*BenchReport, error) { return bench.LoadReport(path) }

// BaselineSystem bundles a baseline (HLF/FastFabric/StreamChain) cluster
// with a workload generator and registered clients.
type BaselineSystem struct {
	Cluster *BaselineCluster
	Gen     *Generator
}

// NewBaselineSystem builds a baseline cluster with clients and seeded state.
func NewBaselineSystem(cfg BaselineConfig, w WorkloadConfig) *BaselineSystem {
	c := fabric.NewCluster(cfg)
	w.NumOrgs = cfg.NumOrgs
	gen := workload.NewGenerator(w, c.Scheme)
	ids := make([]crypto.Identity, w.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)
	return &BaselineSystem{Cluster: c, Gen: gen}
}

// Submit schedules transactions for client submission at virtual time at.
func (s *BaselineSystem) Submit(at time.Duration, txns ...*Transaction) {
	s.Cluster.SubmitAt(at, txns...)
}

// SubmitRate schedules an offered load of rate txns/s over [0, window).
// The total scheduled is exactly round(rate * window_seconds).
func (s *BaselineSystem) SubmitRate(rate float64, window time.Duration) int {
	return bench.ScheduleTicks(rate, window, func(at time.Duration, n int) {
		s.Cluster.SubmitAt(at, s.Gen.Batch(n)...)
	})
}

// Run advances the simulation to absolute virtual time t.
func (s *BaselineSystem) Run(t time.Duration) { s.Cluster.Run(t) }

// Collector exposes the metrics collector.
func (s *BaselineSystem) Collector() *Collector { return s.Cluster.Collector }

// CheckSafety verifies ledgers and states across all peers.
func (s *BaselineSystem) CheckSafety() error { return s.Cluster.CheckSafety() }

// Summary computes headline metrics over [from, to).
func (s *BaselineSystem) Summary(from, to time.Duration) Summary {
	col := s.Cluster.Collector
	return Summary{
		Throughput:  col.EffectiveThroughput(from, to),
		AvgLatency:  col.AvgLatency(from, to),
		P99Latency:  col.PercentileLatency(0.99, from, to),
		Committed:   col.NumCommitted(),
		AbortRate:   col.AbortRate(),
		SpecSuccess: col.SpecSuccessRate(),
	}
}

// System bundles a BIDL cluster with a workload generator and registered
// clients — the convenient entry point for applications and examples.
type System struct {
	Cluster *Cluster
	Gen     *Generator
}

// NewSystem builds a cluster, registers the workload's clients, and seeds
// every node's world state with the SmallBank accounts.
func NewSystem(cfg Config, w WorkloadConfig) *System {
	c := core.NewCluster(cfg)
	w.NumOrgs = cfg.NumOrgs
	gen := workload.NewGenerator(w, c.Scheme)
	ids := make([]crypto.Identity, w.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)
	return &System{Cluster: c, Gen: gen}
}

// Submit schedules transactions for client submission at virtual time at.
func (s *System) Submit(at time.Duration, txns ...*Transaction) {
	s.Cluster.SubmitAt(at, txns...)
}

// SubmitRate schedules an offered load of rate txns/s over [0, window),
// returning the number of transactions scheduled — exactly
// round(rate * window_seconds), free of float-accumulator drift.
func (s *System) SubmitRate(rate float64, window time.Duration) int {
	return bench.ScheduleTicks(rate, window, func(at time.Duration, n int) {
		s.Cluster.SubmitAt(at, s.Gen.Batch(n)...)
	})
}

// Run advances the simulation to absolute virtual time t.
func (s *System) Run(t time.Duration) { s.Cluster.Run(t) }

// Collector exposes the metrics collector.
func (s *System) Collector() *Collector { return s.Cluster.Collector }

// CheckSafety verifies ledgers and states across all correct nodes.
func (s *System) CheckSafety() error { return s.Cluster.CheckSafety() }

// Summary reports headline metrics for the window [from, to).
type Summary struct {
	Throughput  float64
	AvgLatency  time.Duration
	P99Latency  time.Duration
	Committed   int
	AbortRate   float64
	SpecSuccess float64
}

// Summary computes headline metrics over [from, to).
func (s *System) Summary(from, to time.Duration) Summary {
	col := s.Cluster.Collector
	return Summary{
		Throughput:  col.EffectiveThroughput(from, to),
		AvgLatency:  col.AvgLatency(from, to),
		P99Latency:  col.PercentileLatency(0.99, from, to),
		Committed:   col.NumCommitted(),
		AbortRate:   col.AbortRate(),
		SpecSuccess: col.SpecSuccessRate(),
	}
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("throughput=%.0f txns/s avg_latency=%v p99=%v committed=%d abort_rate=%.2f%% spec_success=%.1f%%",
		s.Throughput, s.AvgLatency.Round(10*time.Microsecond), s.P99Latency.Round(10*time.Microsecond),
		s.Committed, s.AbortRate*100, s.SpecSuccess*100)
}
