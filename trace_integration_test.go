package bidl

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/trace"
)

// tracedRun executes a small traced BIDL deployment and returns the tracer
// plus how many transactions committed.
func tracedRun(t *testing.T) (*Tracer, int) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumOrgs = 8
	cfg.BlockSize = 50
	cfg.BlockTimeout = 5 * time.Millisecond
	cfg.Tracer = NewTracer(TraceOptions{})
	w := DefaultWorkload(cfg.NumOrgs)
	w.NumClients = 10
	w.Accounts = 500
	sys := NewSystem(cfg, w)
	sys.SubmitRate(3000, 200*time.Millisecond)
	sys.Run(time.Second)
	if err := sys.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	return cfg.Tracer, sys.Summary(0, time.Second).Committed
}

// TestTraceDeterminism is the acceptance gate for the tracing layer: two
// same-seed traced runs must serialize to byte-identical Chrome traces and
// JSONL event streams. Any map-iteration order or wall-clock leak in the
// recorder or the exporters breaks this.
func TestTraceDeterminism(t *testing.T) {
	tr1, c1 := tracedRun(t)
	tr2, c2 := tracedRun(t)
	if c1 != c2 {
		t.Fatalf("committed counts diverge: %d vs %d", c1, c2)
	}
	var a, b bytes.Buffer
	if err := tr1.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same-seed Chrome traces are not byte-identical")
	}
	a.Reset()
	b.Reset()
	if err := tr1.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same-seed JSONL exports are not byte-identical")
	}
}

// TestTraceCoversCommittedTransactions checks the exported Chrome trace
// contains at least one complete transaction span per committed transaction
// and per-node counter tracks.
func TestTraceCoversCommittedTransactions(t *testing.T) {
	tr, committed := tracedRun(t)
	if committed == 0 {
		t.Fatal("no transactions committed")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var txSpans, counters int
	for _, e := range tf.TraceEvents {
		switch {
		case e.Ph == "X" && e.Cat == "tx":
			txSpans++
		case e.Ph == "C":
			counters++
		}
	}
	if txSpans < committed {
		t.Errorf("tx spans = %d, want >= %d committed transactions", txSpans, committed)
	}
	if counters == 0 {
		t.Error("no counter tracks in trace")
	}
	// The tracer saw the full lifecycle: a notified event per commit.
	var notified int
	for _, e := range tr.TxEvents() {
		if e.Stage == trace.StageNotified {
			notified++
		}
	}
	if notified < committed {
		t.Errorf("notified events = %d, want >= %d", notified, committed)
	}
}

// TestUntracedSystemUnaffected confirms that attaching a tracer does not
// change simulation outcomes: traced and untraced same-seed runs must agree
// on every summary metric.
func TestUntracedSystemUnaffected(t *testing.T) {
	run := func(traced bool) Summary {
		cfg := DefaultConfig()
		cfg.NumOrgs = 8
		cfg.BlockSize = 50
		if traced {
			cfg.Tracer = NewTracer(TraceOptions{})
		}
		w := DefaultWorkload(cfg.NumOrgs)
		w.NumClients = 10
		w.Accounts = 500
		sys := NewSystem(cfg, w)
		sys.SubmitRate(3000, 200*time.Millisecond)
		sys.Run(time.Second)
		return sys.Summary(0, time.Second)
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("tracing changed simulation outcome:\nuntraced %+v\ntraced   %+v", a, b)
	}
}
