package bidl

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// benchScale controls how hard the benchmark experiments push. 1.0 is the
// paper-faithful configuration (full offered loads, full windows) and takes
// tens of minutes for the whole suite; the default keeps `go test -bench=.`
// to a few minutes. Override with BIDL_BENCH_SCALE=1.0.
func benchScale() float64 {
	if v := os.Getenv("BIDL_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			return f
		}
	}
	return 0.15
}

// benchWorkers controls the sweep runner's worker pool in benchmark runs.
// Default is serial; BIDL_BENCH_J=4 (or -1 for GOMAXPROCS) fans sweep
// points out without changing any measured value.
func benchWorkers() int {
	if v := os.Getenv("BIDL_BENCH_J"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 1
}

// benchExperiment runs one registered paper experiment per iteration and
// renders its table into the benchmark output.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := BenchOptions{Scale: benchScale(), Seed: 1, Workers: benchWorkers()}
	for i := 0; i < b.N; i++ {
		table, err := RunExperiment(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n[scale=%.2f of paper load]\n", opts.Scale)
			table.Render(os.Stdout)
		}
	}
}

// BenchmarkFig3Contention regenerates Figure 3: throughput/latency/aborts vs
// contention ratio for BIDL, FastFabric, HLF.
func BenchmarkFig3Contention(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig5ThroughputLatency regenerates Figure 5: throughput-vs-latency
// curves for BIDL, FastFabric, StreamChain.
func BenchmarkFig5ThroughputLatency(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Scalability regenerates Figure 6: BIDL latency across four
// BFT protocols as organizations scale 4..97.
func BenchmarkFig6Scalability(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable2FFBreakdown regenerates Table 2: the FastFabric-SMaRt
// latency breakdown.
func BenchmarkTable2FFBreakdown(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3BIDLBreakdown regenerates Table 3: the BIDL-SMaRt latency
// breakdown.
func BenchmarkTable3BIDLBreakdown(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4Malicious regenerates Table 4: effective throughput under
// fault-free, malicious-leader, and malicious-broadcaster scenarios.
func BenchmarkTable4Malicious(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig7DenylistTimeline regenerates Figure 7: real-time throughput
// under the smart adversary.
func BenchmarkFig7DenylistTimeline(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Workloads regenerates Figure 8: robustness to non-determinism
// and contention.
func BenchmarkFig8Workloads(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9MultiDC regenerates Figure 9: multi-datacenter bandwidth
// sensitivity, BIDL vs BIDL-opt-disabled.
func BenchmarkFig9MultiDC(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10PacketLoss regenerates Figure 10: throughput vs packet-loss
// rate, BIDL vs FastFabric.
func BenchmarkFig10PacketLoss(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkAblations measures BIDL's design-choice ablations (speculation,
// multicast, consensus-on-hash).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }
